(* Domain-safe metrics registry: named counters, gauges and histograms.

   Recording is lock-free on the hot path — every metric owns
   preallocated [Atomic] cells and the registry mutex is taken only when
   a metric is first registered (or a store array must grow, which keeps
   the same atomic cells, so concurrent recorders never lose updates).
   Like [Timing], the registry itself is always live; instrumentation
   sites are expected to sample [enabled] once per run (the engine
   does), so a disabled registry costs one atomic read per simulation,
   not per round.

   A [scoped] region additionally accumulates every record made by the
   *calling domain* into a private collector.  This is how the harness
   captures a deterministic per-cell snapshot even when cells run
   concurrently on [Pool] worker domains: the global registry sees the
   interleaved whole, each scope sees exactly its own cell.

   Snapshots are plain sorted assoc data, so they [Marshal] cleanly
   (the store caches one per cell), round-trip through sexp, and merge
   associatively and commutatively: counters add, gauges take the max,
   histograms add bucket-wise.  See test/test_metrics.ml for the qcheck
   statements of those laws. *)

type kind = Counter | Gauge | Histogram

let kind_name = function Counter -> "counter" | Gauge -> "gauge" | Histogram -> "histogram"

type metric = { name : string; kind : kind; slot : int }
type counter = metric
type gauge = metric
type histogram = metric

let name m = m.name

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* --- histogram buckets ---

   Power-of-two value buckets: bucket 0 holds v <= 0; bucket i >= 1
   holds 2^(i-1) <= v <= 2^i - 1 (i.e. the values with i significant
   bits).  62 value buckets cover every positive OCaml int. *)

let n_buckets = 63

let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and x = ref v in
    while !x > 0 do
      incr b;
      x := !x lsr 1
    done;
    min (n_buckets - 1) !b
  end

let bucket_upper i = if i = 0 then 0 else if i >= 62 then max_int else (1 lsl i) - 1
let bucket_lower i = if i = 0 then min_int else 1 lsl (i - 1)

type hist_cells = {
  hcounts : int Atomic.t array;
  hsum : int Atomic.t;
  hcount : int Atomic.t;
  hmin : int Atomic.t;
  hmax : int Atomic.t;
}

let fresh_hist_cells () =
  {
    hcounts = Array.init n_buckets (fun _ -> Atomic.make 0);
    hsum = Atomic.make 0;
    hcount = Atomic.make 0;
    hmin = Atomic.make max_int;
    hmax = Atomic.make min_int;
  }

let atomic_min a v =
  let rec go () =
    let old = Atomic.get a in
    if v < old && not (Atomic.compare_and_set a old v) then go ()
  in
  go ()

let atomic_max a v =
  let rec go () =
    let old = Atomic.get a in
    if v > old && not (Atomic.compare_and_set a old v) then go ()
  in
  go ()

(* --- registry ---

   Per-kind slot tables.  Growth replaces the array but reuses the same
   atomic cells, so a recorder holding the old array still updates the
   cells the new array points at. *)

let lock = Mutex.create ()
let by_name : (string, metric) Hashtbl.t = Hashtbl.create 64
let gauge_unset = min_int
let c_cells : int Atomic.t array ref = ref [||]
let c_names : string array ref = ref [||]
let n_counters = ref 0
let g_cells : int Atomic.t array ref = ref [||]
let g_names : string array ref = ref [||]
let n_gauges = ref 0
let h_cells : hist_cells array ref = ref [||]
let h_names : string array ref = ref [||]
let n_hists = ref 0

let grow cells names fresh n =
  if n >= Array.length !cells then begin
    let cap = max 8 (2 * (n + 1)) in
    let old = !cells in
    cells := Array.init cap (fun i -> if i < Array.length old then old.(i) else fresh ());
    let oldn = !names in
    names := Array.init cap (fun i -> if i < Array.length oldn then oldn.(i) else "")
  end

let register nm kind =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt by_name nm with
      | Some m ->
        if m.kind <> kind then
          invalid_arg
            (Printf.sprintf "Metrics: %s already registered as a %s" nm (kind_name m.kind));
        m
      | None ->
        let slot =
          match kind with
          | Counter ->
            grow c_cells c_names (fun () -> Atomic.make 0) !n_counters;
            let s = !n_counters in
            incr n_counters;
            (!c_names).(s) <- nm;
            s
          | Gauge ->
            grow g_cells g_names (fun () -> Atomic.make gauge_unset) !n_gauges;
            let s = !n_gauges in
            incr n_gauges;
            (!g_names).(s) <- nm;
            s
          | Histogram ->
            grow h_cells h_names fresh_hist_cells !n_hists;
            let s = !n_hists in
            incr n_hists;
            (!h_names).(s) <- nm;
            s
        in
        let m = { name = nm; kind; slot } in
        Hashtbl.add by_name nm m;
        m)

let counter nm = register nm Counter
let gauge nm = register nm Gauge
let histogram nm = register nm Histogram

(* --- scopes (domain-local collectors) --- *)

type scope = {
  mutable sc : int array; (* counter deltas by slot *)
  mutable sgv : int array; (* gauge values (gauge_unset = untouched) *)
  mutable shc : int array array; (* hist bucket counts ([||] = untouched) *)
  mutable shs : int array; (* hist sums *)
  mutable shn : int array; (* hist observation counts *)
  mutable shmin : int array;
  mutable shmax : int array;
}

let fresh_scope () =
  { sc = [||]; sgv = [||]; shc = [||]; shs = [||]; shn = [||]; shmin = [||]; shmax = [||] }

let grow_ints a n default =
  if n < Array.length a then a
  else begin
    let b = Array.make (max 8 (2 * (n + 1))) default in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let scope_stack : scope list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let scope_add_counter s slot n =
  s.sc <- grow_ints s.sc slot 0;
  s.sc.(slot) <- s.sc.(slot) + n

let scope_set_gauge s slot v =
  s.sgv <- grow_ints s.sgv slot gauge_unset;
  s.sgv.(slot) <- v

let grow_scope_hists a n =
  if n < Array.length a then a
  else begin
    let b = Array.make (max 8 (2 * (n + 1))) [||] in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let scope_observe s slot v =
  s.shc <- grow_scope_hists s.shc slot;
  if Array.length s.shc.(slot) = 0 then s.shc.(slot) <- Array.make n_buckets 0;
  s.shs <- grow_ints s.shs slot 0;
  s.shn <- grow_ints s.shn slot 0;
  s.shmin <- grow_ints s.shmin slot max_int;
  s.shmax <- grow_ints s.shmax slot min_int;
  s.shc.(slot).(bucket_of v) <- s.shc.(slot).(bucket_of v) + 1;
  s.shs.(slot) <- s.shs.(slot) + v;
  s.shn.(slot) <- s.shn.(slot) + 1;
  if v < s.shmin.(slot) then s.shmin.(slot) <- v;
  if v > s.shmax.(slot) then s.shmax.(slot) <- v

(* --- recording --- *)

let add c n =
  ignore (Atomic.fetch_and_add (!c_cells).(c.slot) n);
  match !(Domain.DLS.get scope_stack) with
  | [] -> ()
  | scopes -> List.iter (fun s -> scope_add_counter s c.slot n) scopes

let incr c = add c 1
let value c = Atomic.get (!c_cells).(c.slot)
let reset_counter c = Atomic.set (!c_cells).(c.slot) 0

let set g v =
  Atomic.set (!g_cells).(g.slot) v;
  match !(Domain.DLS.get scope_stack) with
  | [] -> ()
  | scopes -> List.iter (fun s -> scope_set_gauge s g.slot v) scopes

let gauge_value g =
  let v = Atomic.get (!g_cells).(g.slot) in
  if v = gauge_unset then None else Some v

let observe h v =
  let cells = (!h_cells).(h.slot) in
  ignore (Atomic.fetch_and_add cells.hcounts.(bucket_of v) 1);
  ignore (Atomic.fetch_and_add cells.hsum v);
  ignore (Atomic.fetch_and_add cells.hcount 1);
  atomic_min cells.hmin v;
  atomic_max cells.hmax v;
  match !(Domain.DLS.get scope_stack) with
  | [] -> ()
  | scopes -> List.iter (fun s -> scope_observe s h.slot v) scopes

(* --- snapshots --- *)

type hist_snapshot = {
  buckets : (int * int) list; (* (bucket upper bound, count), ascending, counts > 0 *)
  sum : int;
  count : int;
  vmin : int; (* max_int when empty *)
  vmax : int; (* min_int when empty *)
}

type snapshot = {
  counters : (string * int) list; (* sorted by name, non-zero *)
  gauges : (string * int) list; (* sorted by name *)
  hists : (string * hist_snapshot) list; (* sorted by name, non-empty *)
}

let empty = { counters = []; gauges = []; hists = [] }
let is_empty s = s.counters = [] && s.gauges = [] && s.hists = []

let by_fst (a, _) (b, _) = compare (a : string) b

let of_counters l =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (n, v) -> Hashtbl.replace tbl n (v + Option.value (Hashtbl.find_opt tbl n) ~default:0))
    l;
  let counters =
    Hashtbl.fold (fun n v acc -> if v <> 0 then (n, v) :: acc else acc) tbl []
    |> List.sort by_fst
  in
  { empty with counters }

let hist_of_values vs =
  match vs with
  | [] -> { buckets = []; sum = 0; count = 0; vmin = max_int; vmax = min_int }
  | _ ->
    let counts = Array.make n_buckets 0 in
    let sum = ref 0 and vmin = ref max_int and vmax = ref min_int in
    List.iter
      (fun v ->
        counts.(bucket_of v) <- counts.(bucket_of v) + 1;
        sum := !sum + v;
        if v < !vmin then vmin := v;
        if v > !vmax then vmax := v)
      vs;
    let buckets = ref [] in
    for i = n_buckets - 1 downto 0 do
      if counts.(i) > 0 then buckets := (bucket_upper i, counts.(i)) :: !buckets
    done;
    { buckets = !buckets; sum = !sum; count = List.length vs; vmin = !vmin; vmax = !vmax }

let hist_snapshot_of_counts counts ~sum ~count ~vmin ~vmax =
  let buckets = ref [] in
  for i = n_buckets - 1 downto 0 do
    if counts.(i) > 0 then buckets := (bucket_upper i, counts.(i)) :: !buckets
  done;
  { buckets = !buckets; sum; count; vmin; vmax }

let snapshot () =
  Mutex.protect lock (fun () ->
      let counters = ref [] in
      for i = !n_counters - 1 downto 0 do
        let v = Atomic.get (!c_cells).(i) in
        if v <> 0 then counters := ((!c_names).(i), v) :: !counters
      done;
      let gauges = ref [] in
      for i = !n_gauges - 1 downto 0 do
        let v = Atomic.get (!g_cells).(i) in
        if v <> gauge_unset then gauges := ((!g_names).(i), v) :: !gauges
      done;
      let hists = ref [] in
      for i = !n_hists - 1 downto 0 do
        let c = (!h_cells).(i) in
        if Atomic.get c.hcount > 0 then begin
          let counts = Array.map Atomic.get c.hcounts in
          hists :=
            ( (!h_names).(i),
              hist_snapshot_of_counts counts ~sum:(Atomic.get c.hsum)
                ~count:(Atomic.get c.hcount) ~vmin:(Atomic.get c.hmin)
                ~vmax:(Atomic.get c.hmax) )
            :: !hists
        end
      done;
      {
        counters = List.sort by_fst !counters;
        gauges = List.sort by_fst !gauges;
        hists = List.sort by_fst !hists;
      })

let scope_snapshot s =
  Mutex.protect lock (fun () ->
      let counters = ref [] in
      for i = min (!n_counters - 1) (Array.length s.sc - 1) downto 0 do
        if s.sc.(i) <> 0 then counters := ((!c_names).(i), s.sc.(i)) :: !counters
      done;
      let gauges = ref [] in
      for i = min (!n_gauges - 1) (Array.length s.sgv - 1) downto 0 do
        if s.sgv.(i) <> gauge_unset then gauges := ((!g_names).(i), s.sgv.(i)) :: !gauges
      done;
      let hists = ref [] in
      for i = min (!n_hists - 1) (Array.length s.shc - 1) downto 0 do
        if Array.length s.shc.(i) > 0 && s.shn.(i) > 0 then
          hists :=
            ( (!h_names).(i),
              hist_snapshot_of_counts s.shc.(i) ~sum:s.shs.(i) ~count:s.shn.(i)
                ~vmin:s.shmin.(i) ~vmax:s.shmax.(i) )
            :: !hists
      done;
      {
        counters = List.sort by_fst !counters;
        gauges = List.sort by_fst !gauges;
        hists = List.sort by_fst !hists;
      })

let scoped f =
  let stack = Domain.DLS.get scope_stack in
  let s = fresh_scope () in
  stack := s :: !stack;
  match f () with
  | v ->
    stack := List.tl !stack;
    (v, scope_snapshot s)
  | exception e ->
    stack := List.tl !stack;
    raise e

let reset () =
  Mutex.protect lock (fun () ->
      for i = 0 to !n_counters - 1 do
        Atomic.set (!c_cells).(i) 0
      done;
      for i = 0 to !n_gauges - 1 do
        Atomic.set (!g_cells).(i) gauge_unset
      done;
      for i = 0 to !n_hists - 1 do
        let c = (!h_cells).(i) in
        Array.iter (fun a -> Atomic.set a 0) c.hcounts;
        Atomic.set c.hsum 0;
        Atomic.set c.hcount 0;
        Atomic.set c.hmin max_int;
        Atomic.set c.hmax min_int
      done)

(* --- merge / diff --- *)

(* Merge two name-sorted assoc lists, combining values under the same
   name with [combine]; [keep] drops entries (zero counters) from the
   result. *)
let merge_assoc combine keep l1 l2 =
  let rec go l1 l2 =
    match (l1, l2) with
    | [], l | l, [] -> List.filter (fun (_, v) -> keep v) l
    | (n1, v1) :: r1, (n2, v2) :: r2 ->
      let c = compare (n1 : string) n2 in
      if c < 0 then if keep v1 then (n1, v1) :: go r1 l2 else go r1 l2
      else if c > 0 then if keep v2 then (n2, v2) :: go l1 r2 else go l1 r2
      else begin
        let v = combine v1 v2 in
        if keep v then (n1, v) :: go r1 r2 else go r1 r2
      end
  in
  go l1 l2

let merge_hist a b =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (ub, c) -> Hashtbl.replace tbl ub (c + Option.value (Hashtbl.find_opt tbl ub) ~default:0))
    (a.buckets @ b.buckets);
  let buckets = Hashtbl.fold (fun ub c acc -> (ub, c) :: acc) tbl [] |> List.sort compare in
  {
    buckets;
    sum = a.sum + b.sum;
    count = a.count + b.count;
    vmin = min a.vmin b.vmin;
    vmax = max a.vmax b.vmax;
  }

let merge a b =
  {
    counters = merge_assoc ( + ) (fun v -> v <> 0) a.counters b.counters;
    gauges = merge_assoc max (fun _ -> true) a.gauges b.gauges;
    hists = merge_assoc merge_hist (fun h -> h.count > 0) a.hists b.hists;
  }

(* [diff after before]: counter increments between the two snapshots;
   gauges and histogram min/max are taken from [after] (they do not
   subtract meaningfully). *)
let diff after before =
  let sub_hist a b =
    let tbl = Hashtbl.create 16 in
    List.iter (fun (ub, c) -> Hashtbl.replace tbl ub c) a.buckets;
    List.iter
      (fun (ub, c) ->
        Hashtbl.replace tbl ub (Option.value (Hashtbl.find_opt tbl ub) ~default:0 - c))
      b.buckets;
    let buckets =
      Hashtbl.fold (fun ub c acc -> if c > 0 then (ub, c) :: acc else acc) tbl []
      |> List.sort compare
    in
    { buckets; sum = a.sum - b.sum; count = a.count - b.count; vmin = a.vmin; vmax = a.vmax }
  in
  {
    counters =
      merge_assoc ( + ) (fun v -> v <> 0) after.counters
        (List.map (fun (n, v) -> (n, -v)) before.counters);
    gauges = after.gauges;
    hists =
      (let before_tbl = Hashtbl.create 16 in
       List.iter (fun (n, h) -> Hashtbl.replace before_tbl n h) before.hists;
       List.filter_map
         (fun (n, h) ->
           let d =
             match Hashtbl.find_opt before_tbl n with Some b -> sub_hist h b | None -> h
           in
           if d.count > 0 then Some (n, d) else None)
         after.hists);
  }

(* --- histogram queries --- *)

let percentile h q =
  if h.count = 0 then 0
  else begin
    let target = int_of_float (ceil (q *. float_of_int h.count)) in
    let target = max 1 (min h.count target) in
    let rec go acc = function
      | [] -> h.vmax
      | (ub, c) :: rest -> if acc + c >= target then ub else go (acc + c) rest
    in
    let v = go 0 h.buckets in
    max h.vmin (min v h.vmax)
  end

let hist_mean h = if h.count = 0 then 0.0 else float_of_int h.sum /. float_of_int h.count

(* --- sexp codec --- *)

let sexp_of_snapshot s =
  let int i = Sexp.Atom (string_of_int i) in
  let pair (n, v) = Sexp.List [ Sexp.Atom n; int v ] in
  let hist (n, h) =
    Sexp.List
      [
        Sexp.Atom n;
        Sexp.List
          (Sexp.Atom "buckets"
          :: List.map (fun (ub, c) -> Sexp.List [ int ub; int c ]) h.buckets);
        Sexp.List [ Sexp.Atom "sum"; int h.sum ];
        Sexp.List [ Sexp.Atom "count"; int h.count ];
        Sexp.List [ Sexp.Atom "min"; int h.vmin ];
        Sexp.List [ Sexp.Atom "max"; int h.vmax ];
      ]
  in
  Sexp.List
    [
      Sexp.Atom "metrics";
      Sexp.List (Sexp.Atom "counters" :: List.map pair s.counters);
      Sexp.List (Sexp.Atom "gauges" :: List.map pair s.gauges);
      Sexp.List (Sexp.Atom "hists" :: List.map hist s.hists);
    ]

let fail () = failwith "Metrics.snapshot_of_sexp: malformed snapshot"

let snapshot_of_sexp sexp =
  let as_int s = match Sexp.as_int s with Some i -> i | None -> fail () in
  let pair = function
    | Sexp.List [ Sexp.Atom n; v ] -> (n, as_int v)
    | _ -> fail ()
  in
  let field entries key =
    match
      List.find_map
        (function
          | Sexp.List [ Sexp.Atom k; v ] when k = key -> Some (as_int v) | _ -> None)
        entries
    with
    | Some v -> v
    | None -> fail ()
  in
  let hist = function
    | Sexp.List (Sexp.Atom n :: (Sexp.List (Sexp.Atom "buckets" :: bs) :: _ as entries)) ->
      let buckets =
        List.map (function Sexp.List [ ub; c ] -> (as_int ub, as_int c) | _ -> fail ()) bs
      in
      ( n,
        {
          buckets;
          sum = field entries "sum";
          count = field entries "count";
          vmin = field entries "min";
          vmax = field entries "max";
        } )
    | _ -> fail ()
  in
  match sexp with
  | Sexp.List
      [
        Sexp.Atom "metrics";
        Sexp.List (Sexp.Atom "counters" :: cs);
        Sexp.List (Sexp.Atom "gauges" :: gs);
        Sexp.List (Sexp.Atom "hists" :: hs);
      ] ->
    {
      counters = List.map pair cs |> List.sort by_fst;
      gauges = List.map pair gs |> List.sort by_fst;
      hists = List.map hist hs |> List.sort by_fst;
    }
  | _ -> fail ()

(* --- exposition formats ---

   [to_json] and [to_prometheus] are pure functions of the snapshot, so
   any exposition surface (CLI, daemon socket) renders identically.
   Snapshots are name-sorted, which makes both outputs deterministic. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json s =
  let b = Buffer.create 512 in
  let sep = ref false in
  let comma () =
    if !sep then Buffer.add_char b ',';
    sep := true
  in
  let obj name render items =
    comma ();
    Buffer.add_string b (Printf.sprintf "\"%s\":{" name);
    let first = ref true in
    List.iter
      (fun (n, v) ->
        if not !first then Buffer.add_char b ',';
        first := false;
        Buffer.add_string b (Printf.sprintf "\"%s\":" (json_escape n));
        render v)
      items;
    Buffer.add_char b '}'
  in
  Buffer.add_char b '{';
  obj "counters" (fun v -> Buffer.add_string b (string_of_int v)) s.counters;
  obj "gauges" (fun v -> Buffer.add_string b (string_of_int v)) s.gauges;
  obj "hists"
    (fun h ->
      Buffer.add_string b
        (Printf.sprintf "{\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"buckets\":[" h.count
           h.sum
           (if h.count = 0 then 0 else h.vmin)
           (if h.count = 0 then 0 else h.vmax));
      List.iteri
        (fun i (ub, c) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf "[%d,%d]" ub c))
        h.buckets;
      Buffer.add_string b "]}")
    s.hists;
  Buffer.add_char b '}';
  Buffer.contents b

(* Prometheus exposition: metric names keep [a-zA-Z0-9_:], everything
   else becomes '_'.  Histogram buckets are cumulative per the text
   format's convention, ending with the implicit [+Inf] bucket. *)
let prom_name prefix n =
  let b = Buffer.create (String.length n + String.length prefix) in
  Buffer.add_string b prefix;
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    n;
  Buffer.contents b

let to_prometheus ?(prefix = "rn_") s =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b l) fmt in
  List.iter
    (fun (n, v) ->
      let pn = prom_name prefix n in
      line "# TYPE %s counter\n%s %d\n" pn pn v)
    s.counters;
  List.iter
    (fun (n, v) ->
      let pn = prom_name prefix n in
      line "# TYPE %s gauge\n%s %d\n" pn pn v)
    s.gauges;
  List.iter
    (fun (n, h) ->
      let pn = prom_name prefix n in
      line "# TYPE %s histogram\n" pn;
      let cum = ref 0 in
      List.iter
        (fun (ub, c) ->
          cum := !cum + c;
          line "%s_bucket{le=\"%d\"} %d\n" pn ub !cum)
        h.buckets;
      line "%s_bucket{le=\"+Inf\"} %d\n" pn h.count;
      line "%s_sum %d\n%s_count %d\n" pn h.sum pn h.count)
    s.hists;
  Buffer.contents b

let pp_hist ppf h =
  Format.fprintf ppf "n=%d mean=%.1f p50=%d p95=%d max=%d" h.count (hist_mean h)
    (percentile h 0.5) (percentile h 0.95)
    (if h.count = 0 then 0 else h.vmax)

let pp_snapshot ppf s =
  let open Format in
  List.iter (fun (n, v) -> fprintf ppf "%-32s %d@\n" n v) s.counters;
  List.iter (fun (n, v) -> fprintf ppf "%-32s %d (gauge)@\n" n v) s.gauges;
  List.iter (fun (n, h) -> fprintf ppf "%-32s %a@\n" n pp_hist h) s.hists
