(** Fixed-size domain pool for embarrassingly parallel experiment cells.

    The harness's workloads are independent [(experiment, n, seed)] cells
    whose randomness is derived deterministically from the cell itself, so
    a parallel map and a sequential map must produce identical results.
    [map ~jobs:1] degenerates to [List.map] — same order of evaluation,
    same exceptions, no domains spawned — so sequential semantics stay
    byte-identical. *)

(** [recommended_jobs ()] is [Domain.recommended_domain_count () - 1]
    (leaving one core for the coordinating domain), at least 1 and capped
    at [cap] (default 16). *)
val recommended_jobs : ?cap:int -> unit -> int

(** [map ~jobs f xs] maps [f] over [xs], preserving input order.

    With [jobs <= 1] this is exactly [List.map f xs].  Otherwise a
    transient pool of [min jobs (List.length xs)] worker domains drains
    the cells from a shared queue; the first exception raised by a worker
    is re-raised (with its backtrace) after the pool has stopped, and any
    cells not yet started at that point are abandoned. *)
val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** A persistent pool, for callers that want to amortise domain spawns
    across many batches. *)
type t

(** [create ~jobs] spawns [max 1 jobs] worker domains blocked on an empty
    work queue (guarded by a [Mutex.t]/[Condition.t] pair). *)
val create : jobs:int -> t

(** Number of worker domains. *)
val size : t -> int

(** [run t f xs] is [map] executed on [t]'s workers: order-preserving,
    first-exception-propagating.  The calling domain blocks until the
    batch completes.  Raises [Invalid_argument] after [shutdown]. *)
val run : t -> ('a -> 'b) -> 'a list -> 'b list

(** [run_n t f n] applies [f] to every index [0 .. n-1] on [t]'s workers
    and blocks until the batch completes: {!run} specialised to the
    pinned contiguous slices of the engine's sharded phases — no id
    list, no result collection.  The first worker exception is re-raised
    with its backtrace; the batch-completion mutex gives the caller a
    happens-before edge over every write the workers made.  [n = 1] runs
    [f 0] on the calling domain; [n <= 0] is a no-op. *)
val run_n : t -> (int -> unit) -> int -> unit

(** Finish the queued work, stop the workers, and join their domains.
    Idempotent. *)
val shutdown : t -> unit
