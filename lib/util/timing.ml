(* Lightweight section profiling for the engine hot path.

   Counters are global and atomic so that experiment cells running on
   [Pool] worker domains can record concurrently.  Profiling is off by
   default; the engine reads [enabled] once per [run], so a disabled
   profiler costs one atomic read per simulation, not per round. *)

type section = Wake | Collect | Adversary | Deliver | Resume

let n_sections = 5
let index = function Wake -> 0 | Collect -> 1 | Adversary -> 2 | Deliver -> 3 | Resume -> 4

let label = function
  | Wake -> "wake"
  | Collect -> "collect"
  | Adversary -> "adversary"
  | Deliver -> "deliver"
  | Resume -> "resume"

let section_labels = [ "wake"; "collect"; "adversary"; "deliver"; "resume" ]
let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* Boxed-float atomics; fine, these are touched only when profiling. *)
let seconds = Array.init n_sections (fun _ -> Atomic.make 0.0)
let entries = Array.init n_sections (fun _ -> Atomic.make 0)
let rounds_total = Atomic.make 0
let silent_skipped = Atomic.make 0

let add_float a x =
  let rec go () =
    let old = Atomic.get a in
    if not (Atomic.compare_and_set a old (old +. x)) then go ()
  in
  go ()

(* Monotonic clock (CLOCK_MONOTONIC via the C stub): immune to the NTP
   slews and wall-clock jumps that gettimeofday is subject to, and the
   same clock family bench has used since PR 2. *)
external monotonic_ns : unit -> int64 = "rn_monotonic_ns"

let now () = Int64.to_float (monotonic_ns ()) /. 1e9

let record sec dt =
  let i = index sec in
  add_float seconds.(i) dt;
  Atomic.incr entries.(i)

let add_rounds n = ignore (Atomic.fetch_and_add rounds_total n)
let add_silent_skipped n = ignore (Atomic.fetch_and_add silent_skipped n)

let reset () =
  Array.iter (fun a -> Atomic.set a 0.0) seconds;
  Array.iter (fun a -> Atomic.set a 0) entries;
  Atomic.set rounds_total 0;
  Atomic.set silent_skipped 0

type snapshot = {
  sections : (string * int * float) list;
  rounds : int;
  silent : int;
}

let snapshot () =
  {
    sections =
      List.mapi (fun i l -> (l, Atomic.get entries.(i), Atomic.get seconds.(i))) section_labels;
    rounds = Atomic.get rounds_total;
    silent = Atomic.get silent_skipped;
  }

(* Fold the section profile into the metrics snapshot format, so one
   aggregation path (merge/sexp/tables) serves both layers.  Seconds
   become integer nanoseconds: metrics values are exact ints. *)
let metrics_snapshot () =
  let s = snapshot () in
  let ns t = int_of_float (t *. 1e9) in
  Metrics.of_counters
    (List.concat_map
       (fun (l, n, t) -> [ ("timing." ^ l ^ ".entries", n); ("timing." ^ l ^ ".ns", ns t) ])
       s.sections
    @ [ ("timing.rounds", s.rounds); ("timing.silent_skipped", s.silent) ])

let pp_report ppf s =
  let open Format in
  fprintf ppf "--- engine profile (aggregated over all runs) ---@\n";
  let total = List.fold_left (fun acc (_, _, t) -> acc +. t) 0.0 s.sections in
  List.iter
    (fun (l, n, t) ->
      let share = if total > 0.0 then 100.0 *. t /. total else 0.0 in
      fprintf ppf "  %-10s %10.3f ms  %5.1f%%  (%d entries)@\n" l (t *. 1e3) share n)
    s.sections;
  fprintf ppf "  rounds executed: %d, silent rounds fast-forwarded: %d@\n" s.rounds s.silent;
  if s.rounds + s.silent > 0 then
    fprintf ppf "  avg cost per executed round: %.0f ns@\n"
      (if s.rounds > 0 then total /. float_of_int s.rounds *. 1e9 else 0.0)

let print_report () = Format.printf "%a@." pp_report (snapshot ())
