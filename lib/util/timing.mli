(** Section counters for the engine round loop ([--profile]).

    Global, atomic, and therefore safe to record from [Pool] worker
    domains.  Disabled by default: the engine samples [enabled] once per
    [run], so the instrumentation is free unless switched on.

    The clock is [CLOCK_MONOTONIC] (nanosecond resolution, immune to
    NTP slews and wall-clock jumps — the same clock family bench uses),
    which is plenty to tell which phase of the round loop dominates. *)

type section = Wake | Collect | Adversary | Deliver | Resume

val label : section -> string
val enabled : unit -> bool
val set_enabled : bool -> unit

(** Clear all counters. *)
val reset : unit -> unit

(** Current time in seconds on the monotonic clock (arbitrary epoch:
    only differences are meaningful). *)
val now : unit -> float

(** [record sec dt] adds [dt] seconds and one entry to [sec]. *)
val record : section -> float -> unit

(** Total rounds actually executed (not fast-forwarded). *)
val add_rounds : int -> unit

(** Rounds skipped or short-circuited as silent. *)
val add_silent_skipped : int -> unit

type snapshot = {
  sections : (string * int * float) list;  (** label, entries, seconds *)
  rounds : int;
  silent : int;
}

val snapshot : unit -> snapshot

(** The section profile folded into the {!Metrics} snapshot format
    ([timing.<section>.entries], [timing.<section>.ns],
    [timing.rounds], [timing.silent_skipped]), so profiler output can
    be merged and exported through the one metrics pipeline. *)
val metrics_snapshot : unit -> Metrics.snapshot

val pp_report : Format.formatter -> snapshot -> unit
val print_report : unit -> unit
