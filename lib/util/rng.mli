(** Deterministic splittable PRNG (splitmix64).

    All randomness in the simulator flows from a single experiment seed
    through [create]/[split]/[derive], making every execution reproducible. *)

type t

(** [create seed] returns a fresh generator determined by [seed]. *)
val create : int -> t

(** [split t] advances [t] and returns an independent generator. *)
val split : t -> t

(** [derive t label] returns a generator determined by [t]'s current state
    and [label], without advancing [t].  Used to give process [label] its own
    stream. *)
val derive : t -> int -> t

(** [derive_into dst ~parent label] resets [dst] to the exact state
    [derive parent label] would return, without allocating.  [parent] is not
    advanced. *)
val derive_into : t -> parent:t -> int -> unit

(** [int t bound] is uniform in [\[0, bound)]. Raises on [bound <= 0]. *)
val int : t -> int -> int

(** [float t] is uniform in [\[0, 1)]. *)
val float : t -> float

(** [bool t p] is [true] with probability [p]. *)
val bool : t -> float -> bool

(** Non-negative pseudo-random bits (62 of them). *)
val bits : t -> int

(** Fisher-Yates shuffle. *)
val shuffle_in_place : t -> 'a array -> unit

(** [permutation t n] is a uniform permutation of [0..n-1]. *)
val permutation : t -> int -> int array

(** Uniform element of a non-empty array. *)
val choose : t -> 'a array -> 'a

(** [geometric t p] is the number of Bernoulli([p]) trials up to and
    including the first success (support [1, 2, ...]). *)
val geometric : t -> float -> int
