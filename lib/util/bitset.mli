(** Dense mutable bitsets over [0, capacity).

    The word storage is an off-heap [Bigarray] of native ints: the GC
    never scans or moves it, so large row caches and per-shard kernel
    accumulators cost nothing at collection time.  Each word still holds
    [bits_per_word] (= [Sys.int_size]) usable bits. *)

type t

val create : int -> t
val capacity : t -> int
val add : t -> int -> unit
val remove : t -> int -> unit
val mem : t -> int -> bool
val clear : t -> unit
val copy : t -> t
val cardinal : t -> int
val is_empty : t -> bool

(** Iterate members in increasing order. *)
val iter : (int -> unit) -> t -> unit

(** [iter_inter f a b] iterates the members of [a ∧ b] in increasing
    order without materialising the intersection; capacities must
    match. *)
val iter_inter : (int -> unit) -> t -> t -> unit

(** First member of [a ∧ b], or [-1] when the intersection is empty. *)
val find_inter : t -> t -> int

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** Members in increasing order. *)
val to_list : t -> int list

val of_list : int -> int list -> t

(** In-place union/intersection/difference; capacities must match. *)
val union_into : into:t -> t -> unit

val inter_into : into:t -> t -> unit
val diff_into : into:t -> t -> unit

(** Two-accumulator saturating add: [acc2_or_into ~once ~twice src]
    folds [src] into the pair so that after feeding any multiset of
    sets, [once] holds the elements present in at least one of them and
    [twice] those present in at least two.  The word-level update is
    [twice |= once ∧ src; once |= src] — commutative and associative,
    so feed order is irrelevant.  This is the delivery kernel's
    collision rule: receives = once ∧ ¬twice, collisions = twice. *)
val acc2_or_into : once:t -> twice:t -> t -> unit

(** Single-element version of {!acc2_or_into} (for gray-edge senders
    that contribute one receiver at a time). *)
val acc2_add : once:t -> twice:t -> int -> unit

(** [acc2_merge_into ~once ~twice ~src_once ~src_twice] folds one
    accumulator pair into another: afterwards [(once, twice)] describes
    the union of the two contribution multisets.  Because the pair is a
    pure function of the contribution multiset, feeding disjoint shards
    into private pairs and merging them — in any order — is byte-identical
    to a single sequential pass; this is what makes intra-run sharding
    deterministic. *)
val acc2_merge_into : once:t -> twice:t -> src_once:t -> src_twice:t -> unit

(** Word-level view for kernels: the set is [word_count] words of
    [bits_per_word] bits.  [set_word] masks off bits at index
    [>= capacity] in the top word, preserving the representation
    invariant. *)
val bits_per_word : int

(** Population count of one word (for delivery/coverage counts over
    {!get_word} loops). *)
val popcount_word : int -> int

val word_count : t -> int
val get_word : t -> int -> int
val set_word : t -> int -> int -> unit

(** Index of the lowest set bit of a nonzero word (for manual word-level
    iteration: [w land (w - 1)] strips it). *)
val lowest_bit : int -> int

(** [fill_range t lo hi] sets every index in [\[lo, hi)], word-parallel:
    boundary masks plus whole-word interior fills.  [0 <= lo <= hi <=
    capacity] required. *)
val fill_range : t -> int -> int -> unit

(** [diff a b] is a fresh set [a \ b]. *)
val diff : t -> t -> t

val equal : t -> t -> bool

(** [subset a b] iff every member of [a] is in [b]. *)
val subset : t -> t -> bool

val pp : Format.formatter -> t -> unit
