/* Monotonic clock for Rn_util.Timing.

   CLOCK_MONOTONIC is immune to NTP slews and wall-clock jumps, which
   corrupted long profiling runs under gettimeofday (bench moved to a
   monotonic clock in PR 2; this gives the profiler the same source
   without pulling bechamel into rn_util). */

#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value rn_monotonic_ns(value unit)
{
  CAMLparam1(unit);
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  CAMLreturn(caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + ts.tv_nsec));
}
