(* A deterministic O(n)-round CCDS in the style of the paper's reference
   [19] (Wan-Alzoubi-Frieder): id-indexed TDMA frames.

   In every round exactly one process (the round's slot owner) may speak,
   so there are never collisions — which also makes the algorithm immune
   to the gray-edge adversary: a solo broadcast is delivered on every
   reliable link no matter which unreliable links are switched on.  With a
   0-complete detector this gives a deterministic dual-graph CCDS.

   Frames (n rounds each):
     A. greedy MIS by id: a process joins iff no smaller-id detector
        neighbour announced joining earlier in the frame;
     B. every process announces (id, master);
     C. gossip of everything heard in B (chunked over ⌈Δ/cap⌉ frames under
        a message bound);
     D. dominators announce their evidence-path picks;
     E. selected relays announce their second hops.

   The evidence/paths logic mirrors [Explore_ccds]; the contrast the A5
   experiment draws: Θ(n) deterministic rounds versus the randomized
   polylog/Δ schedules — the crossover the paper's related-work section
   talks about, with the w.h.p. constants made visible. *)

module R = Radio
module Ilog = Rn_util.Ilog

type outcome = {
  dominator : bool;
  in_ccds : bool;
  targets : (int * Explore_ccds.path) list;
}

let frames_for ctx =
  let id = Msg.id_bits ~n:(R.n ctx) in
  let payload = R.delta_bound ctx + 2 in
  let chunked avail_per =
    match R.b_bits ctx with
    | None -> 1
    | Some b ->
      let cap = (b - Msg.tag_bits - id) / avail_per in
      if cap < 1 then invalid_arg "Tdma_ccds: b too small" else Ilog.cdiv payload cap
  in
  let gossip_frames = chunked ((2 * id) + 1) in
  let pick_frames = chunked ((2 * id) + 1) in
  (gossip_frames, pick_frames)

(* Total fixed schedule length. *)
let schedule_rounds ctx =
  let gossip_frames, pick_frames = frames_for ctx in
  R.n ctx * (3 + gossip_frames + (2 * pick_frames))

let body ?(on_decide = fun _ -> ()) (_params : Params.t) ctx =
  let n = R.n ctx and me = R.me ctx in
  let keep m = if Radio.in_detector ctx (Msg.src m) then Some m else None in
  (* One TDMA frame: [speak] builds my slot's message, [hear] sees every
     detector-filtered reception. *)
  let frame ~speak ~hear =
    for slot = 0 to n - 1 do
      let msg = if slot = me then speak () else None in
      match R.sync ctx msg with
      | R.Recv m -> ( match keep m with Some m -> hear m | None -> ())
      | R.Own | R.Silence -> ()
    done
  in
  (* ---- frame A: greedy MIS by id ---- *)
  let mis_nbrs = ref [] in
  let joined = ref false in
  frame
    ~speak:(fun () ->
      if !mis_nbrs = [] then begin
        joined := true;
        Some (Msg.Mis_announce { src = me; lds = None })
      end
      else None)
    ~hear:(function
      | Msg.Mis_announce { src; _ } -> mis_nbrs := src :: !mis_nbrs
      | _ -> ());
  let dominator = !joined in
  let in_ccds = ref dominator in
  if dominator then on_decide 1;
  let join () =
    if not !in_ccds then begin
      in_ccds := true;
      on_decide 1
    end
  in
  let my_master = match List.rev !mis_nbrs with m :: _ -> Some m | [] -> None in
  (* ---- frame B: announce (id, master) ---- *)
  let heard1 : (int, int option) Hashtbl.t = Hashtbl.create 16 in
  frame
    ~speak:(fun () ->
      Some (Msg.Announce { src = me; master = (if dominator then None else my_master); lds = None }))
    ~hear:(function
      | Msg.Announce { src; master; _ } -> Hashtbl.replace heard1 src master
      | _ -> ());
  (* ---- frames C: gossip ---- *)
  let gossip_frames, pick_frames = frames_for ctx in
  let evidence : (int, Explore_ccds.path) Hashtbl.t = Hashtbl.create 8 in
  let record target p =
    if target <> me then begin
      match Hashtbl.find_opt evidence target with
      | Some old when Explore_ccds.path_len old <= Explore_ccds.path_len p -> ()
      | _ -> Hashtbl.replace evidence target p
    end
  in
  Hashtbl.iter
    (fun p master ->
      match master with
      | None -> record p Explore_ccds.Direct
      | Some m -> record m (Explore_ccds.Via p))
    heard1;
  let my_entries =
    Hashtbl.fold (fun pid master acc -> { Msg.pid; master } :: acc) heard1 []
  in
  let cap = Ilog.cdiv (List.length my_entries) (max 1 gossip_frames) in
  let chunks = Radio.chunks ~cap:(max 1 cap) my_entries in
  for f = 0 to gossip_frames - 1 do
    frame
      ~speak:(fun () ->
        match List.nth_opt chunks f with
        | Some (_ :: _ as entries) -> Some (Msg.Gossip { src = me; entries; lds = None })
        | Some [] | None -> None)
      ~hear:(function
        | Msg.Gossip { src = v; entries; _ } ->
          List.iter
            (fun { Msg.pid = x; master } ->
              if x <> me then begin
                match master with
                | None -> record x (Explore_ccds.Via v)
                | Some m ->
                  if m = v then record m Explore_ccds.Direct
                  else record m (Explore_ccds.Via2 (v, x))
              end)
            entries
        | _ -> ())
  done;
  (* ---- frames D: picks ---- *)
  let picks =
    if dominator then
      Hashtbl.fold
        (fun _t p acc ->
          match p with
          | Explore_ccds.Direct -> acc
          | Explore_ccds.Via v -> (v, None) :: acc
          | Explore_ccds.Via2 (v, x) -> (v, Some x) :: acc)
        evidence []
      |> List.sort_uniq compare
    else []
  in
  let pick_cap = Ilog.cdiv (List.length picks) (max 1 pick_frames) in
  let pick_chunks = Radio.chunks ~cap:(max 1 pick_cap) picks in
  let relay_xs = ref [] in
  for f = 0 to pick_frames - 1 do
    frame
      ~speak:(fun () ->
        match List.nth_opt pick_chunks f with
        | Some (_ :: _ as picks) -> Some (Msg.Path_select { src = me; picks })
        | Some [] | None -> None)
      ~hear:(function
        | Msg.Path_select { src = _; picks } ->
          List.iter
            (fun (v, x) ->
              if v = me then begin
                join ();
                match x with Some x -> relay_xs := x :: !relay_xs | None -> ()
              end)
            picks
        | _ -> ())
  done;
  (* ---- frames E: second-hop relays ---- *)
  let xs = List.sort_uniq compare !relay_xs in
  let xs_cap = Ilog.cdiv (List.length xs) (max 1 pick_frames) in
  let xs_chunks = Radio.chunks ~cap:(max 1 xs_cap) xs in
  for f = 0 to pick_frames - 1 do
    frame
      ~speak:(fun () ->
        match List.nth_opt xs_chunks f with
        | Some (_ :: _ as xs) -> Some (Msg.Relay_select { src = me; xs })
        | Some [] | None -> None)
      ~hear:(function
        | Msg.Relay_select { src = _; xs } -> if List.mem me xs then join ()
        | _ -> ())
  done;
  if not !in_ccds then on_decide 0;
  {
    dominator;
    in_ccds = !in_ccds;
    targets = List.sort compare (Hashtbl.fold (fun t p acc -> (t, p) :: acc) evidence []);
  }

let run ?(params = Params.default) ?(adversary = Rn_sim.Adversary.silent)
    ?(seed = 0) ?b_bits ?sink ~detector dual =
  Params.validate params;
  let cfg = R.config ~adversary ~seed ?b_bits ?sink ~detector dual in
  R.run cfg (fun ctx -> body ~on_decide:(fun v -> R.output ctx v) params ctx)
