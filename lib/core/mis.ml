(* The MIS algorithm of Section 4.

   Execution is divided into ℓ_E = Θ(log n) epochs.  Each epoch has ⌈log n⌉
   competition phases of length ℓ_P = Θ(log n) with broadcast probability
   doubling from 1/n up to 1/2, followed by one announcement phase of the
   same length.  An active process is knocked out by receiving a contender
   message from a link-detector neighbour; a process surviving every
   competition phase joins the MIS and announces it with probability 1/2
   throughout the announcement phase.  Messages from processes outside the
   local link detector set are discarded.

   The body is also the building block for the CCDS algorithm (Section 5)
   and, via [participate]/[filter]/[label_lds], for the iterated MIS of
   Section 6. *)

module R = Radio
module Ilog = Rn_util.Ilog

type outcome = {
  in_mis : bool;
  mis_neighbors : int list; (* detector-set processes known to be in the MIS *)
}

let phase_len (params : Params.t) ~n = params.c_phase * Ilog.log2_up n
let competition_phases ~n = Ilog.log2_up n
let epoch_count (params : Params.t) ~n = params.c_epochs * Ilog.log2_up n

(* Total fixed schedule length: every process syncs exactly this many
   rounds, which is what lets the CCDS algorithm compose phases. *)
let schedule_rounds params ~n =
  epoch_count params ~n * (competition_phases ~n + 1) * phase_len params ~n

(* Extract the detector-set label from competition messages (Section 6's
   H-filtering). *)
let lds_of = function
  | Msg.Contender { lds; _ } | Msg.Mis_announce { lds; _ } -> lds
  | _ -> None

(* Mutual-membership filter used by the iterated MIS: keep a message only
   if the sender is in our detector set and we are in the sender's. *)
let h_filter ctx recv = Radio.recv_mutual ctx lds_of recv

let body ?(filter = Radio.recv_from_detector) ?(label_lds = false)
    ?(participate = true) ?(on_decide = fun _ -> ()) (params : Params.t) ctx =
  let n = R.n ctx and me = R.me ctx in
  let lp = phase_len params ~n in
  let phases = competition_phases ~n in
  let n_epochs = epoch_count params ~n in
  let mis_set : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let in_mis = ref false in
  let covered = ref false in
  let lds () = if label_lds then Some (Radio.detector_list ctx) else None in
  (* Process one receive; returns whether the caller remains active. *)
  let handle recv active =
    match filter ctx recv with
    | Some (Msg.Contender _) -> false
    | Some (Msg.Mis_announce { src; _ }) ->
      Hashtbl.replace mis_set src ();
      if (not !covered) && not !in_mis then begin
        covered := true;
        on_decide 0
      end
      else covered := true;
      active
    | Some _ | None -> active
  in
  for _epoch = 1 to n_epochs do
    if (not participate) || !in_mis || !covered then begin
      (* Inactive for the competition part: silent, but keep listening so
         the MIS set stays current. *)
      for _ = 1 to phases * lp do
        ignore (handle (R.sync ctx None) false)
      done;
      (* MIS members re-announce in every epoch's announcement window (the
         robustness measure Section 9 prescribes for late listeners): only
         MIS members speak here, so contention stays constant. *)
      for _ = 1 to lp do
        let recv =
          if !in_mis then R.sync_p ctx 0.5 (Msg.Mis_announce { src = me; lds = lds () })
          else R.sync ctx None
        in
        ignore (handle recv false)
      done
    end
    else begin
      let active = ref true in
      for ph = 0 to phases - 1 do
        let p = min 0.5 (float_of_int (1 lsl ph) /. float_of_int n) in
        for _ = 1 to lp do
          let recv =
            if !active then R.sync_p ctx p (Msg.Contender { src = me; lds = lds () })
            else R.sync ctx None
          in
          active := handle recv !active
        done
      done;
      let survived = !active in
      if survived then begin
        in_mis := true;
        Hashtbl.replace mis_set me ();
        on_decide 1
      end;
      for _ = 1 to lp do
        let recv =
          if survived then
            R.sync_p ctx 0.5 (Msg.Mis_announce { src = me; lds = lds () })
          else R.sync ctx None
        in
        ignore (handle recv false)
      done
    end
  done;
  let mis_neighbors =
    Hashtbl.fold
      (fun v () acc -> if v <> me && Radio.in_detector ctx v then v :: acc else acc)
      mis_set []
    |> List.sort compare
  in
  { in_mis = !in_mis; mis_neighbors }

(* Standalone runner: processes output 1 on joining and 0 on learning of a
   detector-neighbour in the MIS. *)
let run ?(params = Params.default) ?(adversary = Rn_sim.Adversary.silent)
    ?(seed = 0) ?b_bits ?sink ~detector dual =
  Params.validate params;
  let cfg = R.config ~adversary ~seed ?b_bits ?sink ~detector dual in
  R.run cfg (fun ctx -> body ~on_decide:(fun v -> R.output ctx v) params ctx)
