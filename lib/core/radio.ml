(* The single engine instantiation shared by every algorithm in the
   library, plus small helpers that recur across them. *)

module R = Rn_sim.Engine.Make (Msg)
include R

(* Re-export the engine's functor-external types so algorithm modules can
   say [Radio.All_decided] etc. *)
type stop_condition = Rn_sim.Engine.stop_condition =
  | All_done
  | All_decided
  | At_round of int

type stats = Rn_sim.Engine.stats = {
  rounds : int;
  sends : int;
  deliveries : int;
  collisions : int;
  bits_sent : int;
  silent_rounds : int;
}

module Bitset = Rn_util.Bitset
module Ilog = Rn_util.Ilog

(* ⌈log₂ n⌉ for this network. *)
let logn ctx = Ilog.log2_up (R.n ctx)

(* True iff [v] is in this process's current link detector set. *)
let in_detector ctx v = R.detector_mem ctx v

(* Detector set as a sorted list (allocates; use sparingly). *)
let detector_list ctx = Bitset.to_list (R.detector ctx)

(* Receive filter used throughout the paper's algorithms: a message is kept
   only if its source is in the local link detector set. *)
let recv_from_detector ctx = function
  | R.Recv m when in_detector ctx (Msg.src m) -> Some m
  | R.Recv _ | R.Own | R.Silence -> None

(* Section 6 filter: additionally require mutual membership — the sender's
   attached detector set must contain us (the H-graph condition).  Messages
   without a label fail the check. *)
let recv_mutual ctx lds_of = function
  | R.Recv m when in_detector ctx (Msg.src m) -> begin
    match lds_of m with
    | Some lds when List.mem (R.me ctx) lds -> Some m
    | Some _ | None -> None
  end
  | R.Recv _ | R.Own | R.Silence -> None

(* Number of ids that fit in one chunked payload given the message bound.
   Reserves [header_ids] id-sized fields plus the tag.  When no bound is
   configured, chunks are unbounded (single chunk). *)
let chunk_capacity ctx ~header_ids =
  let id = Msg.id_bits ~n:(R.n ctx) in
  match R.b_bits ctx with
  | None -> max_int
  | Some b ->
    let cap = (b - Msg.tag_bits - (header_ids * id)) / id in
    if cap < 1 then
      invalid_arg
        (Printf.sprintf "Radio.chunk_capacity: b=%d too small (need b = Omega(log n))" b)
    else cap

(* Split [ids] into chunks of at most [cap]. *)
let chunks ~cap ids =
  let rec take k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> take (k - 1) (x :: acc) rest
  in
  let rec loop acc ids =
    match ids with
    | [] -> List.rev acc
    | _ ->
      let chunk, rest = take cap [] ids in
      loop (chunk :: acc) rest
  in
  loop [] ids
