(* The two communication subroutines of Section 5.

   bounded-broadcast(δ, m): broadcast m with probability 1/2 for
   ℓ_BB(δ) = Θ(2^δ · log n) consecutive rounds; given at most δ concurrent
   callers within interference range, the message reaches all reliable
   neighbours w.h.p. (Lemma 5.1).

   directed-decay: assumes a solved MIS.  Covered processes simulate one
   virtual sender per (destination MIS neighbour, payload) pair; dlog ne
   phases of length ℓ_DD = Θ(log n) double the broadcast probability from
   1/n up to 1/2, and after each phase every MIS process that heard a
   message issues a stop order via bounded-broadcast, deactivating the
   virtual senders aimed at it (Lemma 5.2).

   Both subroutines are *global* schedules: every process must call them at
   the same local round (with [None]/[noms = \[\]] for pure listeners) so
   the lock-step alignment of the enclosing algorithm is preserved. *)

module R = Radio
module Ilog = Rn_util.Ilog
module Rng = Rn_util.Rng

let bb_rounds (params : Params.t) ~n ~delta =
  params.c_bb * (1 lsl min delta params.bb_cap) * Ilog.log2_up n

(* One bounded-broadcast slot.  [msg = None] participates as listener.
   Every received message is handed to [on_recv] unfiltered — callers apply
   their own detector filtering. *)
let bounded_broadcast (params : Params.t) ctx ~delta msg ~on_recv =
  for _ = 1 to bb_rounds params ~n:(R.n ctx) ~delta do
    let recv = match msg with Some m -> R.sync_p ctx 0.5 m | None -> R.sync ctx None in
    match recv with Recv m -> on_recv m | Own | Silence -> ()
  done

let dd_phase_rounds (params : Params.t) ~n = params.c_dd * Ilog.log2_up n

(* Total length of one directed-decay run (for phase-alignment budgeting):
   ⌈log n⌉ phases, each a decay phase plus a stop-order window. *)
let directed_decay_rounds (params : Params.t) ~n =
  Ilog.log2_up n
  * (dd_phase_rounds params ~n + bb_rounds params ~n ~delta:params.delta_bb)

(* [directed_decay params ctx ~is_mis ~noms] where [noms] maps destination
   MIS neighbours to nominee payloads.  Returns, for an MIS process, every
   (sender, nominee) pair addressed to it (empty for covered processes).
   [?early_idle:false] disables the mixed-set batched-idle fast path —
   only the differential tests use it (the two schedules must produce
   identical results round for round). *)
let directed_decay_live ?(early_idle = true) (params : Params.t) ctx ~is_mis ~noms =
  let n = R.n ctx and me = R.me ctx in
  let logn = Ilog.log2_up n in
  let ldd = dd_phase_rounds params ~n in
  let received = ref [] in
  let active : (int, int) Hashtbl.t = Hashtbl.create 4 in
  List.iter (fun (dest, w) -> Hashtbl.replace active dest w) noms;
  (* Combining simultaneous virtual senders is an optimisation; under a
     tight message bound only as many nominations as fit in b bits are
     merged, the rest simply retry on their next coin flip. *)
  let max_noms =
    match R.b_bits ctx with
    | None -> max_int
    | Some b ->
      let id = Msg.id_bits ~n in
      max 1 ((b - Msg.tag_bits - id) / (2 * id))
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  let phase_received = ref false in
  let parked = ref false in
  let i = ref 0 in
  while (not !parked) && !i < logn do
    incr i;
    let p = min 0.5 (float_of_int (1 lsl (!i - 1)) /. float_of_int n) in
    phase_received := false;
    for _ = 1 to ldd do
      (* Each virtual sender flips its own coin; simultaneous winners are
         combined into a single physical message (the paper's message
         merging — O(1) nominations since MIS neighbours are O(1)). *)
      let sending =
        Hashtbl.fold
          (fun dest w acc -> if Rng.bool (R.rng ctx) p then (dest, w) :: acc else acc)
          active []
      in
      let recv =
        match take max_noms sending with
        | [] -> R.sync ctx None
        | noms -> R.sync ctx (Some (Msg.Nominations { src = me; noms }))
      in
      match Radio.recv_from_detector ctx recv with
      | Some (Msg.Nominations { src; noms }) when is_mis ->
        List.iter
          (fun (dest, w) ->
            if dest = me then begin
              received := (src, w) :: !received;
              phase_received := true
            end)
          noms
      | Some _ | None -> ()
    done;
    let stop = if is_mis && !phase_received then Some (Msg.Stop_order { src = me }) else None in
    bounded_broadcast params ctx ~delta:params.delta_bb stop ~on_recv:(fun m ->
        match m with
        | Msg.Stop_order { src } when Radio.in_detector ctx src -> Hashtbl.remove active src
        | _ -> ());
    (* Mixed-set fast path: a covered process whose nomination table just
       emptied (every destination issued its stop order) is a pure
       listener for the remaining phases — the empty table yields zero
       coin flips per decay round, every receive is discarded (the
       Nominations handler is MIS-only), and stop orders remove from an
       empty table.  That tail is round-for-round identical to silence,
       so park the fiber once instead of resuming it every round. *)
    if early_idle && (not is_mis) && !i < logn && Hashtbl.length active = 0 then begin
      let bb = bb_rounds params ~n ~delta:params.delta_bb in
      R.idle ctx ((logn - !i) * (ldd + bb));
      parked := true
    end
  done;
  List.rev !received

let directed_decay (params : Params.t) ctx ~is_mis ~noms =
  if (not is_mis) && noms = [] then begin
    (* Pure listener: no virtual senders (no coin flips), not an MIS node
       (every receive is discarded, stop orders touch an empty table) — the
       whole schedule collapses to one batched idle, which lets the engine
       park this fiber instead of resuming it every round. *)
    R.idle ctx (directed_decay_rounds params ~n:(R.n ctx));
    []
  end
  else directed_decay_live params ctx ~is_mis ~noms
