(** A deterministic Θ(n)-round CCDS via id-indexed TDMA frames, in the
    style of the paper's reference [19].  One speaker per round means no
    collisions ever, so the construction is immune to the gray-edge
    adversary (given a 0-complete detector).  The A5 experiment contrasts
    its linear round cost with the randomized polylog schedules. *)

type outcome = {
  dominator : bool;
  in_ccds : bool;
  targets : (int * Explore_ccds.path) list;
}

(** Total fixed schedule length: [(5 + extra chunk frames) · n]. *)
val schedule_rounds : Radio.ctx -> int

val body : ?on_decide:(int -> unit) -> Params.t -> Radio.ctx -> outcome

val run :
  ?params:Params.t ->
  ?adversary:Rn_sim.Adversary.t ->
  ?seed:int ->
  ?b_bits:int ->
  ?sink:Rn_sim.Events.sink ->
  detector:Rn_detect.Detector.dynamic ->
  Rn_graph.Dual.t ->
  outcome Radio.result
