(* The banned-list CCDS algorithm of Section 5 (0-complete detectors).

   After building an MIS (every MIS process joins the CCDS), the algorithm
   runs ℓ_SE search epochs, each with three phases:

   Phase 1 — every MIS process u transmits B_u \ D_u (its banned list since
   the last delivery) to its covered neighbours in chunks of at most
   b - O(log n) bits via bounded-broadcast; receivers v maintain replicas
   B^v_u, and during the first epoch also the primary replica P^v_u (u's
   original neighbour set).  This phase is the Δ·log²n/b term of Thm 5.3.

   Phase 2 — covered processes nominate, per MIS neighbour u, one of their
   own detector neighbours w that is not in B^v_u, via directed-decay.  By
   construction a nominee leads to an MIS process u has not yet discovered.

   Phase 3 — u selects one nomination (v, w); bounded-broadcast hops tell v
   it was selected and let v probe w; w replies with its own neighbour set
   (if in the MIS) or with the id and neighbour set of one of its MIS
   neighbours x; v forwards the reply to u, which adds everything to B_u.
   v and w join the CCDS, materialising a ≤ 3-hop path from u to the
   discovered MIS process. *)

module R = Radio
module Bitset = Rn_util.Bitset
module Ilog = Rn_util.Ilog

type outcome = {
  in_mis : bool;
  in_ccds : bool;
  mis_neighbors : int list;
  discovered : int list; (* MIS processes discovered during the search *)
}

(* Number of bounded-broadcast slots needed to ship a banned-list delta of
   up to delta_bound + 2 ids. *)
let max_chunks ctx =
  let cap = Radio.chunk_capacity ctx ~header_ids:3 in
  Ilog.cdiv (R.delta_bound ctx + 2) cap

let body ?(on_decide = fun _ -> ()) (params : Params.t) ctx =
  let me = R.me ctx in
  let mis = Mis.body params ctx in
  let in_ccds = ref mis.in_mis in
  if mis.in_mis then on_decide 1;
  let join () =
    if not !in_ccds then begin
      in_ccds := true;
      on_decide 1
    end
  in
  let n = R.n ctx in
  let cap = Radio.chunk_capacity ctx ~header_ids:3 in
  let slots = max_chunks ctx in
  let bb msg ~on_recv =
    Subroutines.bounded_broadcast params ctx ~delta:params.delta_bb msg ~on_recv
  in
  (* Detector-filtered receive hook for bounded-broadcast slots. *)
  let filtered on_msg m = if Radio.in_detector ctx (Msg.src m) then on_msg m in
  (* --- MIS-node state --- *)
  let banned = Bitset.create n in
  let delivered = Bitset.create n in
  if mis.in_mis then begin
    Bitset.add banned me;
    Bitset.iter (Bitset.add banned) (R.detector ctx)
  end;
  let discovered = ref [] in
  (* --- covered-node state --- *)
  let replica : (int, Bitset.t) Hashtbl.t = Hashtbl.create 4 in
  let primary : (int, Bitset.t) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun u ->
      Hashtbl.replace replica u (Bitset.create n);
      Hashtbl.replace primary u (Bitset.create n))
    mis.mis_neighbors;
  for epoch = 1 to params.search_epochs do
    (* ---------------- Phase 1: banned-list transfer ---------------- *)
    let my_chunks =
      if mis.in_mis then
        Radio.chunks ~cap (Bitset.to_list (Bitset.diff banned delivered))
      else []
    in
    for slot = 0 to slots - 1 do
      let msg =
        match List.nth_opt my_chunks slot with
        | Some ids -> Some (Msg.Banned_chunk { src = me; ids })
        | None -> None
      in
      bb msg ~on_recv:(fun m ->
          filtered
            (function
              | Msg.Banned_chunk { src; ids } when Hashtbl.mem replica src ->
                let r = Hashtbl.find replica src in
                List.iter (Bitset.add r) ids;
                if epoch = 1 then begin
                  let p = Hashtbl.find primary src in
                  List.iter (Bitset.add p) ids
                end
              | _ -> ())
            m)
    done;
    if mis.in_mis then begin
      Bitset.clear delivered;
      Bitset.union_into ~into:delivered banned
    end;
    (* ---------------- Phase 2: nominations via directed-decay ------- *)
    let noms =
      if mis.in_mis then []
      else
        List.filter_map
          (fun u ->
            let r = Hashtbl.find replica u in
            Bitset.fold
              (fun w acc -> match acc with Some _ -> acc | None -> if Bitset.mem r w then None else Some (u, w))
              (R.detector ctx) None)
          mis.mis_neighbors
    in
    let nominations =
      Subroutines.directed_decay params ctx ~is_mis:mis.in_mis ~noms
    in
    (* ---------------- Phase 3: exploration --------------------------- *)
    let my_pick = match nominations with [] -> None | (v, w) :: _ -> Some (v, w) in
    (* 3a: u announces its selected relay and target. *)
    let relay_task = ref None in
    let msg_3a =
      match my_pick with
      | Some (v, w) when mis.in_mis -> Some (Msg.Selected { src = me; relay = v; target = w })
      | _ -> None
    in
    bb msg_3a ~on_recv:(fun m ->
        filtered
          (function
            | Msg.Selected { src; relay; target }
              when relay = me && List.mem src mis.mis_neighbors && !relay_task = None ->
              relay_task := Some (src, target);
              join ()
            | _ -> ())
          m);
    (* 3b: the relay probes the target. *)
    let probed = ref false in
    let msg_3b =
      match !relay_task with
      | Some (origin, target) -> Some (Msg.Explore_req { src = me; target; origin })
      | None -> None
    in
    bb msg_3b ~on_recv:(fun m ->
        filtered
          (function
            | Msg.Explore_req { src = _; target; origin = _ } when target = me ->
              probed := true;
              join ()
            | _ -> ())
          m);
    (* 3c: the target replies — its own neighbour set if in the MIS, else
       the id and (primary-replica) neighbour set of one MIS neighbour. *)
    let reply =
      if not !probed then None
      else if mis.in_mis then Some (me, me :: Bitset.to_list (R.detector ctx))
      else begin
        match mis.mis_neighbors with
        | [] -> None (* MIS failure fallback: nothing to report *)
        | x :: _ -> Some (x, x :: Bitset.to_list (Hashtbl.find primary x))
      end
    in
    let reply_chunks =
      match reply with
      | Some (about, ids) -> List.map (fun c -> (about, c)) (Radio.chunks ~cap ids)
      | None -> []
    in
    let forward_acc = ref [] in
    for slot = 0 to slots - 1 do
      let msg =
        match List.nth_opt reply_chunks slot with
        | Some (about, ids) -> Some (Msg.Reply_chunk { src = me; about; ids })
        | None -> None
      in
      bb msg ~on_recv:(fun m ->
          filtered
            (function
              | Msg.Reply_chunk { src; about; ids } -> begin
                match !relay_task with
                | Some (_, target) when src = target ->
                  forward_acc := (about, ids) :: !forward_acc
                | _ -> ()
              end
              | _ -> ())
            m)
    done;
    (* 3d: the relay forwards the reply to its origin MIS process. *)
    let forward_chunks =
      match !relay_task with
      | Some (origin, _) ->
        List.rev_map (fun (about, ids) -> (origin, about, ids)) !forward_acc
      | None -> []
    in
    for slot = 0 to slots - 1 do
      let msg =
        match List.nth_opt forward_chunks slot with
        | Some (dest, about, ids) -> Some (Msg.Forward_chunk { src = me; dest; about; ids })
        | None -> None
      in
      bb msg ~on_recv:(fun m ->
          filtered
            (function
              | Msg.Forward_chunk { src = _; dest; about; ids } when dest = me && mis.in_mis ->
                if not (Bitset.mem banned about) then discovered := about :: !discovered;
                Bitset.add banned about;
                List.iter (Bitset.add banned) ids
              | _ -> ())
            m)
    done
  done;
  if not !in_ccds then on_decide 0;
  {
    in_mis = mis.in_mis;
    in_ccds = !in_ccds;
    mis_neighbors = mis.mis_neighbors;
    discovered = List.sort_uniq compare !discovered;
  }

(* Standalone runner: processes output their CCDS membership. *)
let run ?(params = Params.default) ?(adversary = Rn_sim.Adversary.silent)
    ?(seed = 0) ?b_bits ?sink ~detector dual =
  Params.validate params;
  let cfg = R.config ~adversary ~seed ?b_bits ?sink ~detector dual in
  R.run cfg (fun ctx -> body ~on_decide:(fun v -> R.output ctx v) params ctx)
