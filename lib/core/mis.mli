(** The MIS algorithm of Section 4: Θ(log n) epochs of ⌈log n⌉ doubling
    competition phases plus an announcement phase, solving the MIS problem
    in O(log³ n) rounds w.h.p. with a 0-complete link detector. *)

(** What a process knows when the schedule ends. *)
type outcome = {
  in_mis : bool;
  mis_neighbors : int list;
      (** detector-set processes this process knows joined the MIS; for
          covered processes this is non-empty w.h.p. and is what the CCDS
          algorithm builds on *)
}

(** Length of one competition/announcement phase: [c_phase·⌈log₂ n⌉]. *)
val phase_len : Params.t -> n:int -> int

(** Number of competition phases per epoch: [⌈log₂ n⌉]. *)
val competition_phases : n:int -> int

(** Number of epochs: [c_epochs·⌈log₂ n⌉]. *)
val epoch_count : Params.t -> n:int -> int

(** Total fixed schedule length; every process syncs exactly this many
    rounds, which is what lets the CCDS algorithm compose phases. *)
val schedule_rounds : Params.t -> n:int -> int

(** Detector-set label carried by competition messages (Section 6). *)
val lds_of : Msg.t -> int list option

(** Mutual-membership (H-edge) receive filter used by the iterated MIS. *)
val h_filter : Radio.ctx -> Radio.receive -> Msg.t option

(** The per-process algorithm body.  All processes must execute it from
    the same local round.

    @param filter receive filter (default: keep messages from detector-set
    senders, as the paper prescribes)
    @param label_lds attach the sender's detector set to messages
    @param participate when false, listen through the whole schedule
    without competing (used by the iterated MIS for earlier winners)
    @param on_decide called once with 1 on joining or 0 on learning of a
    covered-by neighbour *)
val body :
  ?filter:(Radio.ctx -> Radio.receive -> Msg.t option) ->
  ?label_lds:bool ->
  ?participate:bool ->
  ?on_decide:(int -> unit) ->
  Params.t ->
  Radio.ctx ->
  outcome

(** Standalone runner: builds the engine config and records each process's
    MIS output (1 on joining, 0 on coverage). *)
val run :
  ?params:Params.t ->
  ?adversary:Rn_sim.Adversary.t ->
  ?seed:int ->
  ?b_bits:int ->
  ?sink:Rn_sim.Events.sink ->
  detector:Rn_detect.Detector.dynamic ->
  Rn_graph.Dual.t ->
  outcome Radio.result
