(** The communication subroutines of Section 5.

    Both are global schedules: every process must call them at the same
    local round (pure listeners pass [None] / [noms = \[\]]) so the
    enclosing algorithm stays phase-aligned. *)

(** [ℓ_BB(δ) = c_bb·2^min(δ,bb_cap)·⌈log₂ n⌉]. *)
val bb_rounds : Params.t -> n:int -> delta:int -> int

(** One bounded-broadcast slot (Lemma 5.1): broadcast [msg] with
    probability 1/2 for [ℓ_BB(delta)] rounds; with at most [delta]
    concurrent callers in interference range the message reaches every
    reliable neighbour w.h.p.  Every received message is passed to
    [on_recv] unfiltered. *)
val bounded_broadcast :
  Params.t ->
  Radio.ctx ->
  delta:int ->
  Msg.t option ->
  on_recv:(Msg.t -> unit) ->
  unit

(** Length of one decay phase: [c_dd·⌈log₂ n⌉]. *)
val dd_phase_rounds : Params.t -> n:int -> int

(** Total length of one directed-decay run (for phase budgeting). *)
val directed_decay_rounds : Params.t -> n:int -> int

(** Directed decay (Lemma 5.2), assuming a solved MIS.  [noms] maps
    destination MIS neighbours to nominee ids; each pair is simulated as a
    virtual sender through ⌈log n⌉ doubling phases, with stop orders from
    satisfied MIS processes after each phase.  Returns, for an MIS process
    ([is_mis = true]), every (sender, nominee) pair addressed to it. *)
val directed_decay :
  Params.t -> Radio.ctx -> is_mis:bool -> noms:(int * int) list -> (int * int) list

(** The schedule behind {!directed_decay}, exposing the batched-idle fast
    paths for differential testing.  [~early_idle:false] disables the
    mixed-set fast path (a covered process whose nomination table empties
    mid-run parks through the remaining phases in one idle); the two
    schedules are observation-for-observation identical. *)
val directed_decay_live :
  ?early_idle:bool ->
  Params.t ->
  Radio.ctx ->
  is_mis:bool ->
  noms:(int * int) list ->
  (int * int) list
