(** The banned-list CCDS algorithm of Section 5 (0-complete detectors):
    MIS construction, then ℓ_SE search epochs of banned-list transfer,
    directed-decay nominations and 3-hop explorations, solving the CCDS
    problem in O(Δ·log²n/b + log³n) rounds w.h.p. (Theorem 5.3). *)

type outcome = {
  in_mis : bool;
  in_ccds : bool;
  mis_neighbors : int list;
  discovered : int list;
      (** MIS processes this MIS process discovered during the search
          (each within 3 hops; empty for covered processes) *)
}

(** Bounded-broadcast slots needed per banned-list transfer under the
    configured message bound. *)
val max_chunks : Radio.ctx -> int

(** The per-process algorithm body; [on_decide] is called once with the
    process's CCDS output. *)
val body : ?on_decide:(int -> unit) -> Params.t -> Radio.ctx -> outcome

(** Standalone runner recording CCDS outputs.  [b_bits], when given, is
    enforced by the engine on every message; it must be Ω(log n). *)
val run :
  ?params:Params.t ->
  ?adversary:Rn_sim.Adversary.t ->
  ?seed:int ->
  ?b_bits:int ->
  ?sink:Rn_sim.Events.sink ->
  detector:Rn_detect.Detector.dynamic ->
  Rn_graph.Dual.t ->
  outcome Radio.result
