(* Benchmark harness.

   Part 1 — bechamel micro-benchmarks of the substrate (engine, graph
   generation, overlay, verifier, subroutines): wall-clock per operation.
   These characterise the simulator, not the paper (whose claims are round
   counts, not seconds).

   Part 2 — the experiment suite of DESIGN.md: one table per theorem of
   the paper, regenerated from scratch.  Pass [--full] for the larger
   parameter grids recorded in EXPERIMENTS.md.

   Flags:
     --full            larger grids
     --jobs N          worker domains for the experiment sweeps
     --profile         print engine round-loop section timings at the end
     --json            write micro-bench estimates + per-experiment
                       wall-clocks to BENCH_PR2.json (see --json-out)
     --json-out FILE   destination for the JSON report
     --store DIR       run every experiment twice through the result
                       store (cold: journalling, warm: replaying) and
                       report the cold-vs-warm sweep time; replaces the
                       seq-vs-par comparison, which a warm cache would
                       render meaningless *)

(* Alias the stub library's clock before the opens: [Toolkit] shadows
   [Monotonic_clock] with its MEASURE wrapper. *)
module Mclock = Monotonic_clock
open Bechamel
open Toolkit
module Rng = Rn_util.Rng
module Gen = Rn_graph.Gen
module Dual = Rn_graph.Dual
module Detector = Rn_detect.Detector
module R = Core.Radio

(* --- fixtures (built once, outside the timed thunks) --- *)

let dual64 =
  Gen.geometric ~rng:(Rng.create 11)
    (Gen.default_spec ~n:64 ~side:(Gen.side_for_degree ~n:64 ~target_degree:10) ())

let det64 = Detector.perfect (Dual.g dual64)
let h64 = Detector.h_graph det64

let mis_outputs =
  let res =
    Core.Mis.run ~seed:1
      ~adversary:(Rn_sim.Adversary.bernoulli 0.5)
      ~detector:(Detector.static det64) dual64
  in
  res.R.outputs

let star32 = Dual.classic (Gen.star 33)
let star32_det = Detector.perfect (Dual.g star32)

let bench_mis_run () =
  ignore
    (Core.Mis.run ~seed:2
       ~adversary:(Rn_sim.Adversary.bernoulli 0.5)
       ~detector:(Detector.static det64) dual64)

let bench_directed_decay () =
  let cfg = R.config ~seed:3 ~detector:(Detector.static star32_det) star32 in
  ignore
    (R.run cfg (fun ctx ->
         let me = R.me ctx in
         let noms = if me = 0 then [] else [ (0, me) ] in
         Core.Subroutines.directed_decay Core.Params.default ctx ~is_mis:(me = 0) ~noms))

let bench_geometric () =
  ignore
    (Gen.geometric ~rng:(Rng.create 42)
       (Gen.default_spec ~n:128 ~side:(Gen.side_for_degree ~n:128 ~target_degree:12) ()))

let bench_overlay () = ignore (Rn_geom.Overlay.i_r 3.0)

let bench_bitset () =
  let a = Rn_util.Bitset.create 1024 and b = Rn_util.Bitset.create 1024 in
  for i = 0 to 1023 do
    if i land 1 = 0 then Rn_util.Bitset.add a i else Rn_util.Bitset.add b i
  done;
  Rn_util.Bitset.union_into ~into:a b;
  ignore (Rn_util.Bitset.cardinal a)

let bench_ccds_check () =
  ignore (Rn_verify.Verify.Ccds_check.check ~h:h64 ~g':(Dual.g' dual64) mis_outputs)

let bench_single_game () =
  let rng = Rng.create 5 in
  ignore (Rn_games.Single_game.play rng Permutation ~beta:256 ~target:129 ~max_rounds:10_000)

let tests =
  Test.make_grouped ~name:"substrate"
    [
      Test.make ~name:"mis-full-run-n64" (Staged.stage bench_mis_run);
      Test.make ~name:"directed-decay-star32" (Staged.stage bench_directed_decay);
      Test.make ~name:"geometric-gen-n128" (Staged.stage bench_geometric);
      Test.make ~name:"overlay-i_r-3" (Staged.stage bench_overlay);
      Test.make ~name:"bitset-union-1024" (Staged.stage bench_bitset);
      Test.make ~name:"ccds-check-n64" (Staged.stage bench_ccds_check);
      Test.make ~name:"single-game-b256" (Staged.stage bench_single_game);
    ]

(* Runs the micro-benchmarks, prints the table, and returns the raw
   (name, ns/run) estimates for the JSON report. *)
let run_microbenches () =
  print_endline "--- substrate micro-benchmarks (bechamel, ns/run) ---";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name o acc -> (name, o) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let t = Rn_util.Table.create [ "benchmark"; "time/run"; "r^2" ] in
  let estimates =
    List.map
      (fun (name, o) ->
        let est =
          match Analyze.OLS.estimates o with Some (e :: _) -> e | _ -> nan
        in
        let pretty =
          if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
          else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
          else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
          else Printf.sprintf "%.0f ns" est
        in
        let r2 =
          match Analyze.OLS.r_square o with
          | Some r -> Printf.sprintf "%.3f" r
          | None -> "-"
        in
        Rn_util.Table.add_row t [ name; pretty; r2 ];
        (name, est))
      rows
  in
  Rn_util.Table.print t;
  print_newline ();
  estimates

(* Monotonic wall-clock timing (bechamel's clock, ns).  gettimeofday is
   subject to NTP slews/jumps, which corrupted speedup tables on long
   runs. *)
let timed f =
  let t0 = Mclock.now () in
  let v = f () in
  let t1 = Mclock.now () in
  (v, Int64.to_float (Int64.sub t1 t0) /. 1e9)

(* Tracing-overhead check: the same MIS workload with instrumentation
   fully off vs fully on (metrics registry enabled and an event sink
   attached).  The "off" number also guards the disabled hot path — the
   engine samples the enabled flags once per run, so a regression here
   means that stopped being free.  Reported to the JSON file as
   pseudo-experiments "trace-off"/"trace-on" so scripts/bench_check.sh
   compares both against the baseline. *)
let trace_overhead () =
  let runs = 5 in
  let workload sink () =
    for seed = 1 to runs do
      ignore
        (Core.Mis.run ~seed
           ~adversary:(Rn_sim.Adversary.bernoulli 0.5)
           ?sink ~detector:(Detector.static det64) dual64)
    done
  in
  workload None () (* warm-up *);
  let (), t_off = timed (workload None) in
  Rn_util.Metrics.set_enabled true;
  let sink = Rn_sim.Events.create ~capacity:(1 lsl 18) () in
  let (), t_on = timed (workload (Some sink)) in
  Rn_util.Metrics.set_enabled false;
  Rn_util.Metrics.reset ();
  Printf.printf
    "--- tracing overhead (MIS n=64 x%d): off %.3f s, on %.3f s (+%.1f%%) ---\n\n" runs t_off
    t_on
    (100.0 *. (t_on -. t_off) /. t_off);
  [ ("trace-off", t_off); ("trace-on", t_on) ]

(* Kernel-path timings, reported as pseudo-experiments so
   scripts/bench_check.sh gates them against the committed baseline:

     dense-delivery-n4096  a 60-round half-duty workload on a degree-1536
                           circulant — every round is dense, so this is
                           the word-parallel delivery kernel end to end;
     world-gen-n32k        one connected geometric world at n=32768 —
                           the hash-grid O(n)-expected construction path.

   The committed baselines are the pre-kernel scalar/naive timings, so a
   regression here means the fast paths stopped engaging. *)
module Beacon_msg = struct
  type t = int

  let size_bits ~n:_ _ = 16
  let pp = Fmt.int
end

module Beacon_engine = Rn_sim.Engine.Make (Beacon_msg)

let kernel_perf () =
  let g =
    (* circulant: node i adjacent to i±1..i±k (mod n); a deterministic
       dense world that keeps the kernel's density test on *)
    let n = 4096 and k = 768 in
    let es = ref [] in
    for u = 0 to n - 1 do
      for j = 1 to k do
        let v = (u + j) mod n in
        es := (min u v, max u v) :: !es
      done
    done;
    Rn_graph.Graph.of_edges n !es
  in
  let dual = Dual.classic g in
  let det = Detector.static (Detector.perfect g) in
  let dense () =
    let cfg =
      Beacon_engine.config ~seed:7 ~stop:(Rn_sim.Engine.At_round 60) ~detector:det dual
    in
    ignore
      (Beacon_engine.run cfg (fun ctx ->
           let me = Beacon_engine.me ctx in
           for _ = 1 to 60 do
             ignore (Beacon_engine.sync_p ctx 0.5 me)
           done))
  in
  dense () (* warm-up: builds the adjacency-row cache *);
  let (), t_dense = timed dense in
  let (), t_gen =
    timed (fun () ->
        ignore
          (Gen.geometric ~rng:(Rng.create 1)
             (Gen.default_spec ~n:32768
                ~side:(Gen.side_for_degree ~n:32768 ~target_degree:12)
                ())))
  in
  Printf.printf "--- kernel paths: dense delivery %.3f s, world gen n=32k %.3f s ---\n\n"
    t_dense t_gen;
  [ ("dense-delivery-n4096", t_dense); ("world-gen-n32k", t_gen) ]

(* Scale-path timings, gated like the kernel entries:

     sharded-delivery-n65536  the S1 beacon workload at n=65536 with the
                              delivery scatter sharded across two pool
                              domains — the intra-run sharding path end
                              to end (scatter, merge, classify, receive);
     world-alloc-n1m          one connected n=10^6 geometric world built
                              through the packed-CSR + off-heap-bitset
                              construction path — the memory half of the
                              million-node milestone.

   A regression in either means the sharded scatter or the packed world
   build stopped carrying its weight. *)
let scale_perf () =
  let dual =
    Gen.geometric ~rng:(Rng.create 21)
      (Gen.default_spec ~n:65536 ~side:(Gen.side_for_degree ~n:65536 ~target_degree:16) ())
  in
  let det = Detector.static (Detector.perfect (Dual.g dual)) in
  let sharded () =
    let cfg =
      Beacon_engine.config ~seed:9 ~stop:(Rn_sim.Engine.At_round 32)
        ~adversary:(Rn_sim.Adversary.bernoulli 0.5)
        ~shards:2 ~detector:det dual
    in
    ignore
      (Beacon_engine.run cfg (fun ctx ->
           let me = Beacon_engine.me ctx in
           for _ = 1 to 32 do
             ignore (Beacon_engine.sync_p ctx 0.25 me)
           done))
  in
  sharded () (* warm-up *);
  let (), t_shard = timed sharded in
  let (), t_world =
    timed (fun () ->
        ignore
          (Gen.geometric ~rng:(Rng.create 2)
             (Gen.default_spec ~n:1_000_000
                ~side:(Gen.side_for_degree ~n:1_000_000 ~target_degree:20)
                ())))
  in
  Printf.printf
    "--- scale paths: sharded delivery n=64k %.3f s, world alloc n=1m %.3f s ---\n\n" t_shard
    t_world;
  [ ("sharded-delivery-n65536", t_shard); ("world-alloc-n1m", t_world) ]

(* Adversary-phase timings, gated like the kernel entries:

     adversary-dense-n65536  spiteful on half-duty dense rounds plus
                             jamming with a small broadcaster set on a
                             degree-80 circulant dual at n=65536 — the
                             word-parallel adversary kernel end to end
                             (mask fills, once/twice victim finding);
     jamming-scalar-n16384   the same jamming workload with the
                             adversary kernel forced off — the scalar
                             path's preallocated scratch (no per-round
                             Array.make n allocations).

   The committed baselines are the pre-kernel per-edge-callback timings
   (2.946 s / 0.127 s on the CI reference box); the acceptance bar for
   the dense entry is >= 3x under them, so a regression means the mask
   path stopped engaging. *)
(* circulant dual: reliable ring i +/- 1..rel_k, gray annulus
   i +/- (rel_k+1)..(rel_k+gray_k) — deterministic, uniform-degree,
   with the contiguous gray-id ranges the kernel exploits *)
let circulant_dual ~n ~rel_k ~gray_k =
  let band lo hi =
    let a = Array.make (n * (hi - lo + 1)) 0 in
    let idx = ref 0 in
    for u = 0 to n - 1 do
      for j = lo to hi do
        let v = (u + j) mod n in
        let x = min u v and y = max u v in
        a.(!idx) <- (x * n) + y;
        incr idx
      done
    done;
    a
  in
  let g = Rn_graph.Graph.of_packed_unsorted n (band 1 rel_k) in
  let gray_pk = band (rel_k + 1) (rel_k + gray_k) in
  Array.sort compare gray_pk;
  Dual.make_packed ~g ~gray_pk ()

let adversary_perf () =
  (* the 1M-node scale entries run just before this one; compact so the
     timings measure the adversary paths, not leftover heap pressure *)
  Gc.compact ();
  let dual = circulant_dual ~n:65536 ~rel_k:8 ~gray_k:32 in
  let det = Detector.static (Detector.perfect (Dual.g dual)) in
  let spiteful () =
    let cfg =
      Beacon_engine.config ~seed:13 ~stop:(Rn_sim.Engine.At_round 8)
        ~adversary:Rn_sim.Adversary.spiteful ~detector:det dual
    in
    ignore
      (Beacon_engine.run cfg (fun ctx ->
           let me = Beacon_engine.me ctx in
           for _ = 1 to 8 do
             ignore (Beacon_engine.sync_p ctx 0.5 me)
           done))
  in
  let jamming ~adv_kernel ~rounds dual det =
    let cfg =
      Beacon_engine.config ~seed:17 ~stop:(Rn_sim.Engine.At_round rounds) ~adv_kernel
        ~adversary:Rn_sim.Adversary.jamming ~detector:det dual
    in
    ignore
      (Beacon_engine.run cfg (fun ctx ->
           let me = Beacon_engine.me ctx in
           if me < 256 then
             for _ = 1 to rounds do
               ignore (Beacon_engine.sync_p ctx 0.5 me)
             done
           else Beacon_engine.idle ctx rounds))
  in
  spiteful () (* warm-up: builds the adversary CSR *);
  let (), t_sp = timed spiteful in
  let (), t_jam = timed (fun () -> jamming ~adv_kernel:`Auto ~rounds:1500 dual det) in
  let small = circulant_dual ~n:16384 ~rel_k:8 ~gray_k:16 in
  let small_det = Detector.static (Detector.perfect (Dual.g small)) in
  jamming ~adv_kernel:`Off ~rounds:60 small small_det (* warm-up *);
  let (), t_scalar =
    timed (fun () -> jamming ~adv_kernel:`Off ~rounds:600 small small_det)
  in
  Printf.printf
    "--- adversary paths: dense n=64k %.3f s (spiteful %.3f + jamming %.3f), scalar jamming \
     n=16k %.3f s ---\n\n"
    (t_sp +. t_jam) t_sp t_jam t_scalar;
  [ ("adversary-dense-n65536", t_sp +. t_jam); ("jamming-scalar-n16384", t_scalar) ]

(* Sharded resume loop, gated like the kernel entries:

     mis-resume-n65536  24 rounds of the real MIS schedule on a 64k
                        circulant world with the resume loop sharded
                        across 4 domains — 64k live algorithm fibers
                        per round, so the resume phase dominates and
                        the speedup (on multicore hosts) is what this
                        entry certifies.
     decay-star32       200 directed-decay runs on the 33-node star:
                        the mixed listener/broadcaster batched-idle
                        fast path (leaves park as soon as the centre's
                        stop order lands) on top of the pure-listener
                        one.

   The committed baselines are scalar-resume timings on the CI
   reference box; on a single-core host the sharded entry falls back to
   near-scalar cost (slices run back to back on the one domain), which
   the check tolerance absorbs. *)
let resume_perf () =
  Gc.compact ();
  let dual = circulant_dual ~n:65536 ~rel_k:8 ~gray_k:8 in
  let det = Detector.static (Detector.perfect (Dual.g dual)) in
  let params = Core.Params.default in
  let mis ~rounds =
    let cfg =
      R.config ~seed:23 ~stop:(Rn_sim.Engine.At_round rounds) ~resume_shards:4
        ~resume_kernel:`On
        ~adversary:(Rn_sim.Adversary.bernoulli 0.5)
        ~detector:det dual
    in
    ignore (R.run cfg (fun ctx -> Core.Mis.body params ctx))
  in
  mis ~rounds:4 (* warm-up: spawns the pool domains, builds the CSR *);
  let (), t_mis = timed (fun () -> mis ~rounds:24) in
  let (), t_decay =
    timed (fun () ->
        for _ = 1 to 200 do
          bench_directed_decay ()
        done)
  in
  Printf.printf
    "--- sharded resume: MIS n=64k 24 rounds %.3f s, directed-decay star32 x200 %.3f s \
     ---\n\n"
    t_mis t_decay;
  [ ("mis-resume-n65536", t_mis); ("decay-star32", t_decay) ]

(* Sweep-service overhead, gated like the kernel entries:

     serve-overhead-e5  E5 (quick scale) submitted cold through an
                        in-process daemon plus one worker over a real
                        unix socket — the full `rn_cli serve` round
                        trip (submit RPC, per-cell claim RPCs, shared
                        journal appends, results fetch), minus process
                        spawning.
     serve-progress-e5  The same cold sweep with a progress-streaming
                        wait draining every per-cell event frame — the
                        streaming path must stay within a few percent
                        of the plain wait.

   The direct cold E5 wall-clock is the "E5" experiment entry in the
   same report, so the pair bounds what the service layer costs per
   sweep; a regression here means the per-cell claim RPCs, the progress
   stream, or the daemon's select tick got expensive. *)
let serve_perf () =
  let module P = Rn_serve.Protocol in
  let module C = Rn_serve.Client in
  (* One cold E5 sweep through a fresh in-process daemon + worker pair
     over a fresh store; [progress] picks the wait flavour. *)
  let one_sweep ~progress =
    let dir = Filename.temp_file "rn-bench-serve" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o700;
    let sock = Filename.concat dir "sock" in
    let store_dir = Filename.concat dir "store" in
    let daemon =
      Domain.spawn (fun () ->
          Rn_serve.Daemon.run ~workers:0 ~spawn:false ~socket:sock ~store_dir ())
    in
    let rec await n =
      if Sys.file_exists sock then ()
      else if n = 0 then failwith "serve bench: daemon never bound its socket"
      else begin
        Unix.sleepf 0.02;
        await (n - 1)
      end
    in
    await 250;
    let worker =
      Domain.spawn (fun () -> Rn_serve.Worker.run ~idle_sleep:0.005 ~socket:sock ())
    in
    let io = C.connect sock in
    let events = ref 0 in
    let (), t_serve =
      timed (fun () ->
          let j =
            match
              C.rpc io (P.Submit { P.exps = [ "E5" ]; scale = P.Quick; jobs = 1; retry = 0 })
            with
            | P.Job_id j -> j
            | _ -> failwith "serve bench: expected a job id"
          in
          (if progress then (
             match C.wait_progress io j ~on_progress:(fun _ -> incr events) with
             | P.Ok_unit -> ()
             | _ -> failwith "serve bench: progress wait failed")
           else
             match C.rpc io (P.Wait { job = j; progress = false }) with
             | P.Ok_unit -> ()
             | _ -> failwith "serve bench: wait failed");
          match C.rpc io (P.Results j) with
          | P.Results_r _ -> ()
          | P.Err m -> failwith ("serve bench: " ^ m)
          | _ -> failwith "serve bench: expected results")
    in
    if progress && !events = 0 then failwith "serve bench: progress stream was empty";
    (match C.rpc io P.Shutdown with
    | P.Ok_unit -> ()
    | _ -> failwith "serve bench: shutdown failed");
    C.close io;
    Domain.join worker;
    Domain.join daemon;
    let rec rm p =
      if Sys.is_directory p then begin
        Array.iter (fun f -> rm (Filename.concat p f)) (Sys.readdir p);
        Unix.rmdir p
      end
      else Sys.remove p
    in
    rm dir;
    t_serve
  in
  let t_serve = one_sweep ~progress:false in
  let t_progress = one_sweep ~progress:true in
  Printf.printf
    "--- sweep service: E5 cold through daemon + worker %.3f s, with progress stream \
     %.3f s (%+.1f%%) ---\n\n"
    t_serve t_progress
    (100.0 *. (t_progress -. t_serve) /. t_serve);
  [ ("serve-overhead-e5", t_serve); ("serve-progress-e5", t_progress) ]

(* --jobs N: worker domains for the experiment sweeps (default: cores - 1,
   capped).  With jobs > 1 every experiment is run twice — once parallel,
   once sequential — and the wall-clock speedup is reported per
   experiment, along with a check that both runs rendered the identical
   table (the harness's determinism guarantee). *)
let parse_jobs () =
  let rec find = function
    | "--jobs" :: v :: _ -> (
      match int_of_string_opt v with
      | Some j when j >= 1 -> j
      | _ -> failwith "usage: --jobs N (N >= 1)")
    | _ :: rest -> find rest
    | [] -> Rn_util.Pool.recommended_jobs ()
  in
  find (Array.to_list Sys.argv)

let parse_json_out () =
  let rec find = function
    | "--json-out" :: path :: _ -> Some path
    | "--json" :: _ -> Some "BENCH_PR2.json"
    | _ :: rest -> find rest
    | [] -> None
  in
  find (Array.to_list Sys.argv)

let parse_store () =
  let rec find = function
    | "--store" :: dir :: _ -> Some dir
    | _ :: rest -> find rest
    | [] -> None
  in
  find (Array.to_list Sys.argv)

(* Hand-rolled JSON (no json dependency); one entry per line so shell
   tooling (scripts/bench_check.sh) can grep it. *)
let write_json ~path ~full ~jobs ~micro ~experiments =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": \"rn-bench/1\",\n  \"scale\": \"%s\",\n  \"jobs\": %d,\n"
    (if full then "full" else "quick")
    jobs;
  Printf.fprintf oc "  \"micro\": [\n";
  List.iteri
    (fun i (name, ns) ->
      Printf.fprintf oc "    {\"name\": \"%s\", \"ns_per_run\": %.1f}%s\n" name
        (if Float.is_nan ns then -1.0 else ns)
        (if i = List.length micro - 1 then "" else ","))
    micro;
  Printf.fprintf oc "  ],\n  \"experiments\": [\n";
  List.iteri
    (fun i (id, seconds) ->
      Printf.fprintf oc "    {\"id\": \"%s\", \"seconds\": %.3f}%s\n" id seconds
        (if i = List.length experiments - 1 then "" else ","))
    experiments;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "[wrote %s]\n" path

let () =
  let full = Array.exists (fun a -> a = "--full") Sys.argv in
  let profile = Array.exists (fun a -> a = "--profile") Sys.argv in
  let json_out = parse_json_out () in
  let jobs = parse_jobs () in
  let store_dir = parse_store () in
  let scale = if full then Rn_harness.Harness.Full else Rn_harness.Harness.Quick in
  let micro = run_microbenches () in
  let trace_entries = trace_overhead () in
  let kernel_entries = kernel_perf () in
  let scale_entries = scale_perf () in
  let adversary_entries = adversary_perf () in
  let resume_entries = resume_perf () in
  let serve_entries = serve_perf () in
  if profile then Rn_util.Timing.set_enabled true;
  Printf.printf
    "--- experiment suite (%s scale, %d jobs; see DESIGN.md / EXPERIMENTS.md) ---\n\n"
    (if full then "full" else "quick")
    jobs;
  let speedups = Rn_util.Table.create [ "experiment"; "seq (s)"; "par (s)"; "speedup"; "identical" ] in
  let cold_warm =
    Rn_util.Table.create [ "experiment"; "cold (s)"; "warm (s)"; "speedup"; "warm hits"; "identical" ]
  in
  let store = Option.map (fun dir -> Rn_util.Store.open_ dir) store_dir in
  (match store with Some s -> Rn_harness.Harness.set_store s | None -> ());
  let wallclocks = ref [] in
  List.iter
    (fun id ->
      Printf.printf "[running %s...]\n%!" id;
      match Rn_harness.All.find id with
      | None -> ()
      | Some f ->
        Rn_harness.Harness.set_jobs jobs;
        let par, t_par = timed (fun () -> f scale) in
        Rn_harness.Harness.print par;
        wallclocks := (id, t_par) :: !wallclocks;
        (match store with
        | Some _ ->
          (* warm pass: every cell should replay from the journal *)
          Rn_harness.Harness.reset_store_counters ();
          let warm, t_warm = timed (fun () -> f scale) in
          let hits, misses, _ = Rn_harness.Harness.store_counters () in
          Rn_util.Table.add_row cold_warm
            [
              id;
              Printf.sprintf "%.2f" t_par;
              Printf.sprintf "%.2f" t_warm;
              Printf.sprintf "%.0fx" (t_par /. t_warm);
              Printf.sprintf "%d/%d" hits (hits + misses);
              (if Rn_harness.Harness.render warm = Rn_harness.Harness.render par then "yes"
               else "NO");
            ]
        | None ->
          if jobs > 1 then begin
            Rn_harness.Harness.set_jobs 1;
            let seq, t_seq = timed (fun () -> f scale) in
            Rn_util.Table.add_row speedups
              [
                id;
                Printf.sprintf "%.2f" t_seq;
                Printf.sprintf "%.2f" t_par;
                Printf.sprintf "%.2fx" (t_seq /. t_par);
                (if Rn_harness.Harness.render seq = Rn_harness.Harness.render par then "yes"
                 else "NO");
              ]
          end))
    Rn_harness.All.ids;
  (match store with
  | Some s ->
    Printf.printf "--- store cold-vs-warm sweep time (dir %s; tables must be identical) ---\n"
      (Rn_util.Store.dir s);
    Rn_util.Table.print cold_warm;
    print_newline ();
    Rn_harness.Harness.clear_store ();
    Rn_util.Store.close s
  | None ->
    if jobs > 1 then begin
      Printf.printf "--- wall-clock speedup at %d jobs (tables must be identical) ---\n" jobs;
      Rn_util.Table.print speedups;
      print_newline ()
    end);
  if profile then Rn_util.Timing.print_report ();
  match json_out with
  | Some path ->
    write_json ~path ~full ~jobs ~micro
      ~experiments:
        (trace_entries @ kernel_entries @ scale_entries @ adversary_entries
        @ resume_entries @ serve_entries @ List.rev !wallclocks)
  | None -> ()
